// Package serve is the profiling-as-a-service layer: an HTTP handler
// that answers profile/lint/advise/export requests (built-in app name
// or .mir upload × architecture × analysis options × scale) from the
// shared content-addressed cache.
//
// Everything the pipeline produces is deterministic and
// content-addressed, so the daemon is read-mostly by construction: the
// first request for a key fills it (single-flight, in-process and
// across processes via the cache's claim files), every later request is
// a hit. Responses are byte-identical to the CLI invocation for the
// same request because both call the same experiments renderers — the
// daemon adds transport, not rendering.
//
// Hardening model:
//
//   - Admission: a runner.Gate bounds concurrent requests and the
//     waiting queue; overflow sheds immediately with 429 + Retry-After
//     instead of queueing unboundedly. /healthz and /statsz bypass the
//     gate so probes keep answering under load.
//   - Deadlines: Config.Timeout bounds each request via its context,
//     which flows runner → experiments → the GPU warp-step guard — the
//     same plumbing as -cell-timeout, but context-based so cacheability
//     is preserved. A client disconnect cancels the same way.
//   - Partial results: with Config.KeepGoing a failing cell renders as
//     its annotation line and the response is 200 with an
//     X-Cudaadvisor-Partial header, mirroring the CLI's -keep-going
//     exit-1-but-render-everything contract.
//   - Chaos: with Config.AllowInject a request may carry a per-request
//     ?inject= fault spec. Injected failures surface as clean 5xx and
//     the daemon keeps serving; injected runs bypass the cache both
//     ways (see experiments.Env.Cache), and kill= specs are always
//     rejected — the daemon never os.Exits on behalf of a request.
//   - Atomic responses: every request renders into a buffer first, so
//     an error becomes a clean status code, never a half-written body.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cudaadvisor/internal/apps"
	"cudaadvisor/internal/experiments"
	"cudaadvisor/internal/export"
	"cudaadvisor/internal/faultinject"
	"cudaadvisor/internal/gpu"
	"cudaadvisor/internal/profcache"
	"cudaadvisor/internal/runner"
	"cudaadvisor/internal/staticadvisor"
)

// maxUploadBytes bounds a .mir upload body.
const maxUploadBytes = 4 << 20

// maxScale bounds the per-request input scale: scale multiplies
// simulation cost, so an unbounded value is a denial-of-service knob.
const maxScale = 64

// Config assembles a Server. Pool, Cache and Gate are shared across all
// requests; the zero value of every limit means "none".
type Config struct {
	Pool  *runner.Pool
	Cache *profcache.Cache // nil = no caching, not even single-flight
	Gate  *runner.Gate     // nil = unbounded admission

	// Timeout bounds each request end to end (0 = none). It is applied
	// to the request context, so cancellation reaches the GPU step
	// guard and the cache stays usable (unlike Env.CellTimeout, which
	// documents timing-dependent runs by bypassing the cache).
	Timeout time.Duration

	// TraceCap bounds each kernel trace's buffers (0 = unbounded).
	TraceCap int

	// KeepGoing maps failing cells to partial-result 200 responses with
	// an X-Cudaadvisor-Partial header instead of a 5xx.
	KeepGoing bool

	// AllowInject honors per-request ?inject= chaos specs. Off by
	// default: injection exists for testing the daemon, not for
	// callers.
	AllowInject bool

	// Log receives one line per completed request; nil = discard.
	Log io.Writer
}

// Server is the HTTP handler. Create with New.
type Server struct {
	cfg Config
	mux *http.ServeMux
}

// New builds the handler.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.healthz)
	s.mux.HandleFunc("/statsz", s.statsz)
	s.mux.HandleFunc("/v1/profile", s.gated(s.profile))
	s.mux.HandleFunc("/v1/lint", s.gated(s.lint))
	s.mux.HandleFunc("/v1/advise", s.gated(s.advise))
	s.mux.HandleFunc("/v1/export", s.gated(s.export))
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format, args...)
	}
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// statszCache mirrors profcache.Snapshot for the wire; evictions, heals
// and takeovers are reported separately from misses so a warm-hit-rate
// assertion stays meaningful under a size budget.
type statszCache struct {
	Requests    int64 `json:"requests"`
	MemoHits    int64 `json:"memo_hits"`
	DiskHits    int64 `json:"disk_hits"`
	Misses      int64 `json:"misses"`
	BadEntries  int64 `json:"bad_entries"`
	Stores      int64 `json:"stores"`
	StoreErrors int64 `json:"store_errors"`
	Evictions   int64 `json:"evictions"`
	Heals       int64 `json:"heals"`
	Takeovers   int64 `json:"takeovers"`
}

type statszGate struct {
	InFlight int   `json:"in_flight"`
	Waiting  int   `json:"waiting"`
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
}

type statszBody struct {
	Cache *statszCache `json:"cache,omitempty"`
	Gate  *statszGate  `json:"gate,omitempty"`
}

func (s *Server) statsz(w http.ResponseWriter, _ *http.Request) {
	var body statszBody
	if c := s.cfg.Cache; c != nil {
		sn := c.Stats()
		body.Cache = &statszCache{
			Requests: sn.Requests(), MemoHits: sn.MemoHits, DiskHits: sn.DiskHits,
			Misses: sn.Misses, BadEntries: sn.BadEntries, Stores: sn.Stores,
			StoreErrors: sn.StoreErrors, Evictions: sn.Evictions, Heals: sn.Heals,
			Takeovers: sn.Takeovers,
		}
	}
	if g := s.cfg.Gate; g != nil {
		body.Gate = &statszGate{
			InFlight: g.InFlight(), Waiting: g.Waiting(),
			Admitted: g.Admitted(), Shed: g.Shed(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// badRequest marks client errors (bad params, unparseable uploads) so
// the handler answers 400 rather than 500.
type badRequest struct{ err error }

func (e badRequest) Error() string { return e.err.Error() }
func (e badRequest) Unwrap() error { return e.err }

func badf(format string, args ...any) error {
	return badRequest{fmt.Errorf(format, args...)}
}

// gated wraps a render handler with the full request discipline:
// admission, deadline, buffered rendering, and status mapping.
func (s *Server) gated(render func(*http.Request, experiments.Env, *bytes.Buffer) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Gate != nil {
			release, err := s.cfg.Gate.Enter(r.Context())
			if errors.Is(err, runner.ErrOverloaded) {
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusTooManyRequests)
				s.logf("serve: %s %s -> 429\n", r.Method, r.URL.Path)
				return
			}
			if err != nil {
				// Client gone while queued; nobody is listening.
				return
			}
			defer release()
		}
		ctx := r.Context()
		if s.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
			defer cancel()
		}

		env := experiments.Env{
			Pool:      s.cfg.Pool,
			Scale:     1,
			Ctx:       ctx,
			TraceCap:  s.cfg.TraceCap,
			KeepGoing: s.cfg.KeepGoing,
			Cache:     s.cfg.Cache,
		}
		var buf bytes.Buffer
		err := func() error {
			if spec := r.URL.Query().Get("inject"); spec != "" {
				inj, err := s.injectConfig(spec)
				if err != nil {
					return err
				}
				env.Inject = inj
			}
			if scale := r.URL.Query().Get("scale"); scale != "" {
				n, err := strconv.Atoi(scale)
				if err != nil || n < 1 || n > maxScale {
					return badf("scale=%q: want an integer in [1, %d]", scale, maxScale)
				}
				env.Scale = n
			}
			return render(r, env, &buf)
		}()

		status, partial := http.StatusOK, false
		var br badRequest
		switch {
		case err == nil:
		case errors.As(err, &br):
			status = http.StatusBadRequest
		case s.cfg.KeepGoing && buf.Len() > 0:
			// The renderer degraded gracefully: annotated cells, healthy
			// ones intact. Deliver the partial body, flagged.
			partial = true
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			s.logf("serve: %s %s -> client gone\n", r.Method, r.URL.Path)
			return
		default:
			status = http.StatusInternalServerError
		}
		s.logf("serve: %s %s -> %d\n", r.Method, r.URL.Path, status)
		if status != http.StatusOK {
			http.Error(w, err.Error(), status)
			return
		}
		if partial {
			w.Header().Set("X-Cudaadvisor-Partial", "true")
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(buf.Bytes())
	}
}

// injectConfig validates a per-request chaos spec: injection must be
// enabled server-side, and kill= is never honored — a request must not
// be able to take the daemon down.
func (s *Server) injectConfig(spec string) (*faultinject.Config, error) {
	if !s.cfg.AllowInject {
		return nil, badf("inject: not enabled on this server (start with -allow-inject)")
	}
	cfg, err := faultinject.Parse(spec)
	if err != nil {
		return nil, badRequest{err}
	}
	if cfg.KillCell != "" {
		return nil, badf("inject: kill= is not allowed over serve")
	}
	return cfg, nil
}

// archParam resolves the ?arch= parameter (default kepler).
func archParam(r *http.Request) (gpu.ArchConfig, error) {
	switch name := r.URL.Query().Get("arch"); name {
	case "", "kepler":
		return gpu.KeplerK40c(), nil
	case "pascal":
		return gpu.PascalP100(), nil
	default:
		return gpu.ArchConfig{}, badf("unknown architecture %q (want kepler or pascal)", name)
	}
}

// appParam resolves the ?app= parameter, when present.
func appParam(r *http.Request) (*apps.App, error) {
	name := r.URL.Query().Get("app")
	if name == "" {
		return nil, nil
	}
	app := apps.ByName(name)
	if app == nil {
		return nil, badf("unknown application %q", name)
	}
	return app, nil
}

// formatParam resolves the ?format= parameter (default text). It
// validates eagerly — the dynamic advise path would otherwise profile
// an app before discovering the rendering is unserviceable.
func formatParam(r *http.Request) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "":
		return "text", nil
	case "text", "json":
		return f, nil
	default:
		return "", badf("unknown format %q (want text or json)", f)
	}
}

// boolParam reads a flag-style parameter ("1"/"true" = on).
func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true"
}

// uploadIR reads a POSTed .mir module and runs the static advisor over
// it. The body is size-bounded; an empty body means "no upload".
func uploadIR(r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	src, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
	if err != nil {
		return nil, badRequest{err}
	}
	if len(src) > maxUploadBytes {
		return nil, badf("upload exceeds %d bytes", maxUploadBytes)
	}
	return src, nil
}

// uploadName labels parse errors for an uploaded module.
func uploadName(r *http.Request) string {
	if n := r.URL.Query().Get("name"); n != "" {
		return n
	}
	return "upload.mir"
}

// profile renders GET /v1/profile?app=A&arch=kepler&mode=all&smem=1.
func (s *Server) profile(r *http.Request, env experiments.Env, buf *bytes.Buffer) error {
	app, err := appParam(r)
	if err != nil {
		return err
	}
	if app == nil {
		return badf("profile wants an ?app= parameter (one of the built-in applications)")
	}
	cfg, err := archParam(r)
	if err != nil {
		return err
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "all"
	}
	switch mode {
	case "rd", "md", "bd", "all":
	default:
		return badf("unknown profile mode %q (want rd, md, bd, or all)", mode)
	}
	req := experiments.ProfileRequest{App: app, Arch: cfg, Mode: mode, Smem: boolParam(r, "smem")}
	return experiments.WriteProfileEnv(buf, env, req)
}

// lint renders /v1/lint?app=A or a POSTed .mir body. Lint is static
// only, so the env (deadline aside) does not apply.
func (s *Server) lint(r *http.Request, _ experiments.Env, buf *bytes.Buffer) error {
	cfg, err := archParam(r)
	if err != nil {
		return err
	}
	format, err := formatParam(r)
	if err != nil {
		return err
	}
	res, err := s.analyzeRequest(r)
	if err != nil {
		return err
	}
	return experiments.WriteStaticLint(buf, res, cfg, format)
}

// advise renders /v1/advise?app=A (profiled and joined, through the
// cache) or a POSTed .mir body (static-only report, same schema).
func (s *Server) advise(r *http.Request, env experiments.Env, buf *bytes.Buffer) error {
	cfg, err := archParam(r)
	if err != nil {
		return err
	}
	format, err := formatParam(r)
	if err != nil {
		return err
	}
	app, err := appParam(r)
	if err != nil {
		return err
	}
	if app != nil {
		return experiments.WriteAdviseEnv(buf, env, app, cfg, format)
	}
	res, err := s.analyzeRequest(r)
	if err != nil {
		return err
	}
	return experiments.WriteStaticAdvise(buf, res, cfg, format)
}

// export renders GET /v1/export?app=A&arch=kepler&format=folded&weight=cycles
// — the flamegraph/timeline serializations of DESIGN.md §12, cached as
// view entries and byte-identical to `cudaadvisor export` by
// construction (same WriteExportEnv renderer). Format and weight
// validate eagerly so a bad request is a 400 before any simulation.
func (s *Server) export(r *http.Request, env experiments.Env, buf *bytes.Buffer) error {
	app, err := appParam(r)
	if err != nil {
		return err
	}
	if app == nil {
		return badf("export wants an ?app= parameter (one of the built-in applications)")
	}
	cfg, err := archParam(r)
	if err != nil {
		return err
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = experiments.ExportFolded
	}
	switch format {
	case experiments.ExportFolded, experiments.ExportChrome:
	default:
		return badf("unknown export format %q (want folded or chrome)", format)
	}
	weight := r.URL.Query().Get("weight")
	if weight == "" {
		weight = export.WeightCycles
	}
	if format == experiments.ExportFolded && !export.ValidWeight(weight) {
		return badf("unknown export weight %q (want cycles, lines, divergence, or reuse)", weight)
	}
	req := experiments.ExportRequest{App: app, Arch: cfg, Format: format, Weight: weight}
	return experiments.WriteExportEnv(buf, env, req)
}

// analyzeRequest resolves the static-analysis target: a built-in app by
// name, or an uploaded textual IR module.
func (s *Server) analyzeRequest(r *http.Request) (*staticadvisor.ModuleResult, error) {
	app, err := appParam(r)
	if err != nil {
		return nil, err
	}
	if app != nil {
		return experiments.AnalyzeAppStatic(app)
	}
	src, err := uploadIR(r)
	if err != nil {
		return nil, err
	}
	if len(src) == 0 {
		return nil, badf("want an ?app= parameter or a POSTed .mir module body")
	}
	res, err := experiments.AnalyzeIRSource(uploadName(r), string(src))
	if err != nil {
		return nil, badRequest{err}
	}
	return res, nil
}

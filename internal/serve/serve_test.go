package serve_test

// The serve acceptance suite: byte-identity against the shared
// renderers (cold and warm, serial and -j 8), single-flight collapse
// under concurrent identical requests, deterministic load shedding,
// chaos (faultinject-through-serve) with the daemon healthy afterwards,
// partial-result keep-going responses, and request deadlines. These run
// under -race in CI — the handler path is the concurrency stress test.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cudaadvisor/internal/apps"
	"cudaadvisor/internal/experiments"
	"cudaadvisor/internal/gpu"
	"cudaadvisor/internal/profcache"
	"cudaadvisor/internal/runner"
	"cudaadvisor/internal/serve"
)

func newServer(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(cfg))
	t.Cleanup(ts.Close)
	return ts
}

// get fetches path and returns status, headers, and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

// statsz mirrors the /statsz wire format.
type statsz struct {
	Cache struct {
		Requests   int64 `json:"requests"`
		MemoHits   int64 `json:"memo_hits"`
		DiskHits   int64 `json:"disk_hits"`
		Misses     int64 `json:"misses"`
		BadEntries int64 `json:"bad_entries"`
		Evictions  int64 `json:"evictions"`
		Heals      int64 `json:"heals"`
	} `json:"cache"`
	Gate struct {
		InFlight int   `json:"in_flight"`
		Waiting  int   `json:"waiting"`
		Admitted int64 `json:"admitted"`
		Shed     int64 `json:"shed"`
	} `json:"gate"`
}

func getStats(t *testing.T, ts *httptest.Server) statsz {
	t.Helper()
	status, _, body := get(t, ts, "/statsz")
	if status != http.StatusOK {
		t.Fatalf("/statsz = %d", status)
	}
	var s statsz
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("unparseable /statsz body %q: %v", body, err)
	}
	return s
}

// refProfile renders the uncached serial CLI reference for one profile
// request — the bytes every serve response must match.
func refProfile(t *testing.T, mode string, smem bool) string {
	t.Helper()
	var b bytes.Buffer
	err := experiments.WriteProfileEnv(&b, experiments.DefaultEnv(nil, 1), experiments.ProfileRequest{
		App: apps.ByName("bfs"), Arch: gpu.KeplerK40c(), Mode: mode, Smem: smem,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestHealthz: the probe endpoint answers without touching the pipeline.
func TestHealthz(t *testing.T) {
	ts := newServer(t, serve.Config{})
	status, _, body := get(t, ts, "/healthz")
	if status != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", status, body)
	}
}

// TestProfileByteIdentityColdWarm: a serve response equals the CLI
// renderer's output byte for byte — cold cache, warm cache (same
// process and a fresh process on the same dir), serial and -j 8.
func TestProfileByteIdentityColdWarm(t *testing.T) {
	want := refProfile(t, "all", false)
	dir := t.TempDir()

	j8 := newServer(t, serve.Config{Pool: runner.New(8), Cache: profcache.New(dir)})
	status, _, cold := get(t, j8, "/v1/profile?app=bfs")
	if status != http.StatusOK {
		t.Fatalf("cold profile = %d: %s", status, cold)
	}
	if cold != want {
		t.Errorf("cold -j 8 response differs from the CLI renderer\n--- got\n%s--- want\n%s", cold, want)
	}
	if s := getStats(t, j8); s.Cache.Misses != 1 {
		t.Errorf("cold stats: misses = %d, want 1", s.Cache.Misses)
	}

	if _, _, warm := get(t, j8, "/v1/profile?app=bfs"); warm != want {
		t.Errorf("warm same-process response differs")
	}
	if s := getStats(t, j8); s.Cache.Misses != 1 || s.Cache.MemoHits != 1 {
		t.Errorf("warm stats: %+v, want the rerun served from the memoizer", s.Cache)
	}

	// A fresh serial daemon on the same directory: warm from disk.
	j1 := newServer(t, serve.Config{Cache: profcache.New(dir)})
	if _, _, warm := get(t, j1, "/v1/profile?app=bfs"); warm != want {
		t.Errorf("warm cross-process response differs")
	}
	if s := getStats(t, j1); s.Cache.Misses != 0 || s.Cache.DiskHits != 1 || s.Cache.BadEntries != 0 {
		t.Errorf("cross-process warm stats: %+v, want one clean disk hit", s.Cache)
	}
}

// TestStaticParity: lint and advise answers — app targets and .mir
// uploads — equal the shared static renderers byte for byte.
func TestStaticParity(t *testing.T) {
	ts := newServer(t, serve.Config{Cache: profcache.New("")})
	cfg := gpu.KeplerK40c()

	res, err := experiments.AnalyzeAppStatic(apps.ByName("bfs"))
	if err != nil {
		t.Fatal(err)
	}
	var wantLint bytes.Buffer
	if err := experiments.WriteStaticLint(&wantLint, res, cfg, "text"); err != nil {
		t.Fatal(err)
	}
	if status, _, body := get(t, ts, "/v1/lint?app=bfs"); status != http.StatusOK || body != wantLint.String() {
		t.Errorf("/v1/lint?app=bfs = %d, body parity %v", status, body == wantLint.String())
	}

	// Upload: lint the module source the app itself carries.
	src := apps.ByName("bfs").Source
	resp, err := http.Post(ts.URL+"/v1/lint?name=bfs.mir&format=json", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	upRes, err := experiments.AnalyzeIRSource("bfs.mir", src)
	if err != nil {
		t.Fatal(err)
	}
	var wantUp bytes.Buffer
	if err := experiments.WriteStaticLint(&wantUp, upRes, cfg, "json"); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || string(body) != wantUp.String() {
		t.Errorf("uploaded lint = %d, body parity %v", resp.StatusCode, string(body) == wantUp.String())
	}

	// Advise over an app goes through the dynamic path and the cache.
	var wantAdvise bytes.Buffer
	env := experiments.DefaultEnv(nil, 1)
	if err := experiments.WriteAdviseEnv(&wantAdvise, env, apps.ByName("bfs"), cfg, "json"); err != nil {
		t.Fatal(err)
	}
	if status, _, body := get(t, ts, "/v1/advise?app=bfs&format=json"); status != http.StatusOK || body != wantAdvise.String() {
		t.Errorf("/v1/advise?app=bfs = %d, body parity %v", status, body == wantAdvise.String())
	}
}

// TestSingleFlightCollapse: concurrent identical requests collapse to
// one fill; distinct requests fill separately. Asserted through
// /statsz, the way the CI smoke test does it.
func TestSingleFlightCollapse(t *testing.T) {
	ts := newServer(t, serve.Config{
		Pool:  runner.New(8),
		Cache: profcache.New(""),
		Gate:  runner.NewGate(16, 16),
	})
	want := refProfile(t, "rd", false)

	const dup = 8
	bodies := make([]string, dup)
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, body := get(t, ts, "/v1/profile?app=bfs&mode=rd")
			if status != http.StatusOK {
				t.Errorf("request %d = %d", i, status)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		if b != want {
			t.Errorf("concurrent response %d differs from the reference", i)
		}
	}
	s := getStats(t, ts)
	if s.Cache.Misses != 1 {
		t.Errorf("%d identical requests ran %d fills; single-flight must collapse them to 1", dup, s.Cache.Misses)
	}
	if s.Cache.MemoHits != dup-1 {
		t.Errorf("memo hits = %d, want %d", s.Cache.MemoHits, dup-1)
	}

	// A distinct request (different rendering) is its own key.
	if status, _, _ := get(t, ts, "/v1/profile?app=bfs&mode=bd"); status != http.StatusOK {
		t.Fatalf("distinct request = %d", status)
	}
	if s := getStats(t, ts); s.Cache.Misses != 2 {
		t.Errorf("distinct request did not fill its own key: misses = %d", s.Cache.Misses)
	}
	if s := getStats(t, ts); s.Gate.Admitted != int64(dup+1) || s.Gate.Shed != 0 {
		t.Errorf("gate counters: %+v", s.Gate)
	}
}

// TestOverloadSheds: with the admitted set and queue full, a request is
// refused immediately with 429 + Retry-After — it never queues. The
// gate is held externally so the test is deterministic.
func TestOverloadSheds(t *testing.T) {
	gate := runner.NewGate(1, 0)
	ts := newServer(t, serve.Config{Cache: profcache.New(""), Gate: gate})

	release, err := gate.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	status, hdr, _ := get(t, ts, "/v1/profile?app=bfs&mode=rd")
	if status != http.StatusTooManyRequests {
		t.Fatalf("overloaded request = %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After")
	}
	if s := getStats(t, ts); s.Gate.Shed != 1 {
		t.Errorf("shed = %d, want 1", s.Gate.Shed)
	}

	release()
	if status, _, _ := get(t, ts, "/v1/profile?app=bfs&mode=rd"); status != http.StatusOK {
		t.Errorf("post-release request = %d, want 200 (shedding must not latch)", status)
	}
}

// TestChaosInjection: a seeded fault surfaces as a clean 5xx, the
// injected run bypasses the cache both ways, and the daemon keeps
// serving healthy requests afterwards. kill= is refused outright, as is
// any injection when the server does not allow it.
func TestChaosInjection(t *testing.T) {
	ts := newServer(t, serve.Config{Cache: profcache.New(""), AllowInject: true})

	status, _, body := get(t, ts, "/v1/profile?app=bfs&mode=rd&inject=seed=7,panic=profile")
	if status != http.StatusInternalServerError {
		t.Fatalf("injected request = %d, want 500 (body %q)", status, body)
	}
	if !strings.Contains(body, "injected panic") {
		t.Errorf("500 body %q does not name the injected fault", body)
	}
	if s := getStats(t, ts); s.Cache.Requests != 0 {
		t.Errorf("injected run touched the cache: %+v", s.Cache)
	}

	if status, _, _ := get(t, ts, "/v1/profile?app=bfs&mode=rd"); status != http.StatusOK {
		t.Errorf("healthy request after chaos = %d; the daemon must keep serving", status)
	}

	if status, _, body := get(t, ts, "/v1/profile?app=bfs&inject=kill=profile"); status != http.StatusBadRequest {
		t.Errorf("kill= spec = %d %q, want 400", status, body)
	}

	locked := newServer(t, serve.Config{Cache: profcache.New("")})
	if status, _, _ := get(t, locked, "/v1/profile?app=bfs&inject=seed=1"); status != http.StatusBadRequest {
		t.Errorf("injection without -allow-inject = %d, want 400", status)
	}
}

// TestPartialKeepGoing: with KeepGoing the failing cell renders as its
// annotation line and the response is 200 with the partial header —
// the HTTP mapping of the CLI's render-everything-exit-1 contract.
func TestPartialKeepGoing(t *testing.T) {
	ts := newServer(t, serve.Config{Cache: profcache.New(""), AllowInject: true, KeepGoing: true})
	status, hdr, body := get(t, ts, "/v1/profile?app=bfs&mode=rd&inject=seed=7,panic=profile")
	if status != http.StatusOK {
		t.Fatalf("keep-going injected request = %d, want 200", status)
	}
	if hdr.Get("X-Cudaadvisor-Partial") != "true" {
		t.Errorf("partial response not flagged (headers %v)", hdr)
	}
	if !strings.Contains(body, "[cell failed:") {
		t.Errorf("partial body %q has no annotation line", body)
	}
}

// TestRequestDeadline: an expired per-request deadline surfaces as 504,
// not a hung connection — the context reaches the GPU step guard.
func TestRequestDeadline(t *testing.T) {
	ts := newServer(t, serve.Config{Cache: profcache.New(""), Timeout: time.Nanosecond})
	status, _, body := get(t, ts, "/v1/profile?app=bfs&mode=rd")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request = %d %q, want 504", status, body)
	}
}

// TestBadRequests: malformed parameters answer 400 with a usable
// message, never 500 and never a half-rendered body.
func TestBadRequests(t *testing.T) {
	ts := newServer(t, serve.Config{Cache: profcache.New("")})
	for _, path := range []string{
		"/v1/profile",                       // missing app
		"/v1/profile?app=nosuch",            // unknown app
		"/v1/profile?app=bfs&arch=volta",    // unknown arch
		"/v1/profile?app=bfs&mode=xyzzy",    // unknown mode
		"/v1/profile?app=bfs&scale=0",       // out-of-range scale
		"/v1/profile?app=bfs&scale=1000000", // out-of-range scale
		"/v1/lint",                          // no app, no upload
		"/v1/advise?app=bfs&format=yaml",    // unknown format
		"/v1/export",                        // missing app
		"/v1/export?app=bfs&format=svg",     // unknown export format
		"/v1/export?app=bfs&weight=bytes",   // unknown folded weight
	} {
		if status, _, body := get(t, ts, path); status != http.StatusBadRequest {
			t.Errorf("%s = %d %q, want 400", path, status, body)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/lint", "text/plain", strings.NewReader("this is not ir"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload = %d, want 400", resp.StatusCode)
	}
}

// refExport renders the uncached serial CLI reference for one export
// request — the bytes every /v1/export response must match.
func refExport(t *testing.T, format, weight string) string {
	t.Helper()
	var b bytes.Buffer
	err := experiments.WriteExportEnv(&b, experiments.DefaultEnv(nil, 1), experiments.ExportRequest{
		App: apps.ByName("bfs"), Arch: gpu.KeplerK40c(), Format: format, Weight: weight,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestExportParity: /v1/export responses equal the shared export
// renderer byte for byte in both formats, and a warm rerun of each is a
// pure cache read.
func TestExportParity(t *testing.T) {
	ts := newServer(t, serve.Config{Cache: profcache.New(t.TempDir())})
	reqs := []struct {
		path, format, weight string
	}{
		{"/v1/export?app=bfs", experiments.ExportFolded, "cycles"}, // folded/cycles defaults
		{"/v1/export?app=bfs&weight=divergence", experiments.ExportFolded, "divergence"},
		{"/v1/export?app=bfs&format=chrome", experiments.ExportChrome, ""},
	}
	for _, r := range reqs {
		want := refExport(t, r.format, r.weight)
		status, _, body := get(t, ts, r.path)
		if status != http.StatusOK {
			t.Fatalf("%s = %d: %.200s", r.path, status, body)
		}
		if body != want {
			t.Errorf("%s differs from the CLI renderer (%d vs %d bytes)", r.path, len(body), len(want))
		}
	}
	before := getStats(t, ts)
	for _, r := range reqs {
		if _, _, body := get(t, ts, r.path); body != refExport(t, r.format, r.weight) {
			t.Errorf("warm %s differs", r.path)
		}
	}
	after := getStats(t, ts)
	if after.Cache.Misses != before.Cache.Misses {
		t.Errorf("warm export reruns missed: %d -> %d misses", before.Cache.Misses, after.Cache.Misses)
	}
}

// TestStatszEvictionCounters: /statsz reports evictions and heals
// separately from misses, so a warm hit-rate assertion stays meaningful
// under a size budget.
func TestStatszEvictionCounters(t *testing.T) {
	c := profcache.New(t.TempDir())
	c.SetBudget(1) // everything stored is immediately over budget
	ts := newServer(t, serve.Config{Cache: c})
	if status, _, _ := get(t, ts, "/v1/profile?app=bfs&mode=rd"); status != http.StatusOK {
		t.Fatal("profile request failed")
	}
	s := getStats(t, ts)
	if s.Cache.Evictions == 0 {
		t.Errorf("budget 1 byte evicted nothing: %+v", s.Cache)
	}
	if s.Cache.Misses != 1 || s.Cache.BadEntries != 0 {
		t.Errorf("eviction leaked into miss/bad accounting: %+v", s.Cache)
	}
}

package pass

import (
	"io"

	"cudaadvisor/internal/ir"
	"cudaadvisor/internal/staticadvisor"
)

// lintPass is an analysis pass: it runs the static advisor over the
// module and writes one category of findings. It never mutates the
// module.
type lintPass struct {
	name  string
	write func(w io.Writer, res *staticadvisor.ModuleResult)
	w     io.Writer
}

func (p *lintPass) Name() string { return p.name }

func (p *lintPass) Run(m *ir.Module) (bool, error) {
	res, err := staticadvisor.Analyze(m)
	if err != nil {
		return false, err
	}
	p.write(p.w, res)
	return false, nil
}

// LintBranches reports conditional branches whose condition is
// thread-varying: the static prediction of Table 3's divergent sites.
func LintBranches(w io.Writer) Pass {
	return &lintPass{name: "lint-branch", w: w,
		write: func(w io.Writer, res *staticadvisor.ModuleResult) {
			res.WriteBranches(w, "lint-branch")
		}}
}

// LintMemory classifies every global-memory access as uniform,
// coalesced, strided or divergent: the static prediction of the
// coalescer behaviour the profiler measures for Figure 5.
func LintMemory(w io.Writer) Pass {
	return &lintPass{name: "lint-mem", w: w,
		write: func(w io.Writer, res *staticadvisor.ModuleResult) {
			res.WriteAccesses(w, "lint-mem")
		}}
}

// LintBarriers reports bar instructions reachable under divergent
// control flow, which the simulator otherwise only surfaces as a
// runtime "divergent barrier" fault.
func LintBarriers(w io.Writer) Pass {
	return &lintPass{name: "lint-barrier", w: w,
		write: func(w io.Writer, res *staticadvisor.ModuleResult) {
			res.WriteBarriers(w, "lint-barrier")
		}}
}

// LintSharedMemory reports the shared-memory checkers' findings: the
// predicted bank-conflict degree of every shared access and any
// intra-CTA write/read hazards within one barrier interval.
func LintSharedMemory(w io.Writer) Pass {
	return &lintPass{name: "lint-smem", w: w,
		write: func(w io.Writer, res *staticadvisor.ModuleResult) {
			res.WriteSharedAccesses(w, "lint-smem")
			res.WriteRaces(w, "lint-smem-race")
		}}
}

// Lint runs all the static-advisor checkers.
func Lint(w io.Writer) Pass {
	return &lintPass{name: "lint", w: w,
		write: func(w io.Writer, res *staticadvisor.ModuleResult) {
			res.WriteBranches(w, "lint-branch")
			res.WriteAccesses(w, "lint-mem")
			res.WriteBarriers(w, "lint-barrier")
			res.WriteSharedAccesses(w, "lint-smem")
			res.WriteRaces(w, "lint-smem-race")
		}}
}

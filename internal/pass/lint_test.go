package pass

import (
	"strings"
	"testing"

	"cudaadvisor/internal/ir"
)

const lintSrc = `
module lintme
kernel @k(%p: ptr, %n: i32) {
entry:
  %tx = sreg tid.x
  %c  = icmp lt i32 %tx, %n
  cbr %c, guarded, exit
guarded:
  %a = gep %p, %tx, 4
  st i32 global [%a], 1
  bar
  br exit
exit:
  ret
}
`

func TestLintPasses(t *testing.T) {
	m := parse(t, lintSrc)
	printed := ir.Print(m)

	var out strings.Builder
	pm := NewManager(Lint(&out))
	pm.VerifyEach = true
	if err := pm.Run(m); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, want := range []string{
		"lint-branch: @k block entry: divergent branch on %c",
		"lint-mem: @k block guarded: st global 4B: coalesced",
		"lint-barrier: @k block guarded: barrier under divergent control flow",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("lint output missing %q:\n%s", want, out.String())
		}
	}
	if got := ir.Print(m); got != printed {
		t.Errorf("lint mutated the module:\n--- before\n%s\n--- after\n%s", printed, got)
	}
}

func TestLintPassNames(t *testing.T) {
	var w strings.Builder
	for _, tc := range []struct {
		p    Pass
		want string
	}{
		{Lint(&w), "lint"},
		{LintBranches(&w), "lint-branch"},
		{LintMemory(&w), "lint-mem"},
		{LintBarriers(&w), "lint-barrier"},
	} {
		if got := tc.p.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

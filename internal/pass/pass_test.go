package pass

import (
	"strings"
	"testing"

	"cudaadvisor/internal/ir"
	"cudaadvisor/internal/irtext"
)

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := irtext.Parse("test.mir", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return m
}

const foldSrc = `
module fold
kernel @k(%p: ptr) {
entry:
  %a = add i32 3, 4
  %b = fmul f32 2.0, 8.0
  %c = icmp lt i32 1, 2
  %s = select i32 %c, %a, 9
  %d = sitofp 5
  %z = sdiv i32 10, 0
  %addr = gep %p, %a, 4
  st i32 global [%addr], %z
  st f32 global [%addr], %b
  ret
}
`

func TestConstFold(t *testing.T) {
	m := parse(t, foldSrc)
	pm := NewManager(ConstFold())
	if err := pm.Run(m); err != nil {
		t.Fatalf("Run: %v", err)
	}
	k := m.Func("k")
	ins := k.Blocks[0].Instrs
	if ins[0].Op != ir.OpMov || ins[0].Args[0].Int != 7 {
		t.Errorf("add not folded: %s", ins[0])
	}
	if ins[1].Op != ir.OpMov || ins[1].Args[0].F != 16 {
		t.Errorf("fmul not folded: %s", ins[1])
	}
	if ins[2].Op != ir.OpMov || ins[2].Args[0].Int != 1 {
		t.Errorf("icmp not folded: %s", ins[2])
	}
	if ins[4].Op != ir.OpMov || ins[4].Args[0].Kind != ir.KConstFloat {
		t.Errorf("sitofp not folded: %s", ins[4])
	}
	if ins[5].Op != ir.OpSDiv {
		t.Errorf("sdiv by zero was folded away: %s", ins[5])
	}
}

func TestConstFoldSelectNeedsFoldedCond(t *testing.T) {
	// select with constant cond folds even if the arms are registers? No:
	// arms must also be constant because allConst requires every operand.
	src := `
module m
kernel @k(%x: i32, %p: ptr) {
entry:
  %s = select i32 true, %x, 2
  %a = gep %p, %s, 4
  st i32 global [%a], %s
  ret
}
`
	m := parse(t, src)
	if err := NewManager(ConstFold()).Run(m); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if in := m.Func("k").Blocks[0].Instrs[0]; in.Op != ir.OpSelect {
		t.Errorf("select with register arm folded: %s", in)
	}
}

const dceSrc = `
module dce
kernel @k(%p: ptr, %n: i32) {
entry:
  %dead1 = add i32 %n, 1
  %dead2 = fadd f32 1.0, 2.0
  %live  = mul i32 %n, 4
  %chain = add i32 %dead1, 1   // reads dead1: keeps it... unless chain dies too
  %a = gep %p, %live, 4
  %v = ld i32 global [%a]
  st i32 global [%a], %v
  ret
}
`

func TestDCE(t *testing.T) {
	m := parse(t, dceSrc)
	if err := NewManager(DCE()).Run(m); err != nil {
		t.Fatalf("Run: %v", err)
	}
	k := m.Func("k")
	text := ir.PrintFunc(k)
	// chain is unread -> removed; then dead1 becomes unread -> removed.
	for _, gone := range []string{"dead1", "dead2", "chain"} {
		if strings.Contains(text, gone) {
			t.Errorf("dead instruction %%%s survived DCE:\n%s", gone, text)
		}
	}
	for _, kept := range []string{"live", "ld i32", "st i32"} {
		if !strings.Contains(text, kept) {
			t.Errorf("live code %q removed by DCE:\n%s", kept, text)
		}
	}
}

func TestDCEKeepsPossiblyFaultingDiv(t *testing.T) {
	src := `
module m
kernel @k(%n: i32) {
entry:
  %q = sdiv i32 10, %n   // may trap; must stay even though unread
  %r = sdiv i32 10, 2    // pure: removable
  ret
}
`
	m := parse(t, src)
	if err := NewManager(DCE()).Run(m); err != nil {
		t.Fatalf("Run: %v", err)
	}
	text := ir.PrintFunc(m.Func("k"))
	if !strings.Contains(text, "sdiv i32 10, %n") {
		t.Errorf("possibly-trapping sdiv removed:\n%s", text)
	}
	if strings.Contains(text, "sdiv i32 10, 2") {
		t.Errorf("pure sdiv kept:\n%s", text)
	}
}

func TestDCEKeepsLoads(t *testing.T) {
	src := `
module m
kernel @k(%p: ptr) {
entry:
  %v = ld f32 global [%p]   // unread, but loads are never removed
  ret
}
`
	m := parse(t, src)
	if err := NewManager(DCE()).Run(m); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(ir.PrintFunc(m.Func("k")), "ld f32") {
		t.Error("DCE removed a load")
	}
}

func TestManagerRejectsInvalidInput(t *testing.T) {
	f := &ir.Function{Name: "bad", IsKernel: true}
	f.Blocks = []*ir.Block{{Name: "entry", Instrs: []*ir.Instr{
		{Op: ir.OpSReg, SReg: ir.SRegTidX, Dst: "t"},
	}}}
	m := ir.NewModule("m")
	m.AddFunc(f)
	pm := NewManager(ConstFold())
	if err := pm.Run(m); err == nil {
		t.Fatal("manager accepted unterminated block")
	}
}

func TestManagerPipelineOrder(t *testing.T) {
	// fold then DCE: the folded moves become dead and vanish.
	src := `
module m
kernel @k(%p: ptr) {
entry:
  %a = add i32 3, 4
  %b = mul i32 %a, 0    // not folded (reads %a)
  ret
}
`
	m := parse(t, src)
	if err := NewManager(ConstFold(), DCE()).Run(m); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n := m.Func("k").InstrCount(); n != 1 {
		t.Errorf("InstrCount after fold+dce = %d, want 1 (just ret):\n%s",
			n, ir.PrintFunc(m.Func("k")))
	}
}

func TestVerifyPass(t *testing.T) {
	m := parse(t, foldSrc)
	if _, err := (VerifyPass{}).Run(m); err != nil {
		t.Fatalf("VerifyPass: %v", err)
	}
}

package pass

import (
	"math"

	"cudaadvisor/internal/ir"
)

// ConstFold rewrites pure instructions whose operands are all constants
// into equivalent moves of the folded constant. It never folds operations
// that could fault (division by zero stays put so the simulator reports
// it at the faulting thread). Because the IR is not SSA the fold does not
// propagate constants through registers; it only simplifies each
// instruction locally, which is what the instrumentation engine needs to
// keep hook-argument expressions cheap.
func ConstFold() Pass {
	return ForEachFunc("constfold", func(f *ir.Function) (bool, error) {
		changed := false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if foldInstr(in) {
					changed = true
				}
			}
		}
		return changed, nil
	})
}

func allConst(in *ir.Instr) bool {
	for _, a := range in.Args {
		if a.Kind == ir.KReg {
			return false
		}
	}
	return true
}

// replaceWithConst rewrites in as "mov <t> <bits-decoded-const>".
func replaceWithConst(in *ir.Instr, t ir.Type, bits uint64) {
	var op ir.Operand
	if t == ir.F32 {
		op = ir.FloatOp(float64(ir.F32FromBits(bits)))
	} else {
		var v int64
		switch t {
		case ir.I1:
			v = int64(bits & 1)
		case ir.I32:
			v = int64(ir.I32FromBits(bits))
		default:
			v = int64(bits)
		}
		op = ir.IntOp(v, t)
	}
	*in = ir.Instr{
		Op: ir.OpMov, Type: t, Dst: in.Dst, DstReg: in.DstReg,
		Args: []ir.Operand{op}, Loc: in.Loc,
		ThenIdx: -1, ElseIdx: -1,
	}
}

func foldInstr(in *ir.Instr) bool {
	if in.Dst == "" || !allConst(in) {
		return false
	}
	arg := func(i int) uint64 { return ir.ConstBits(in.Args[i]) }
	switch {
	case in.Op.IsIntBinary():
		if in.Op == ir.OpSDiv || in.Op == ir.OpSRem {
			if ir.ConstBits(in.Args[1]) == 0 {
				return false // keep the faulting instruction
			}
		}
		bits, err := ir.EvalIntBin(in.Op, in.Type, arg(0), arg(1))
		if err != nil {
			return false
		}
		replaceWithConst(in, in.Type, bits)
	case in.Op.IsFloatBinary():
		bits, err := ir.EvalFloatBin(in.Op, arg(0), arg(1))
		if err != nil {
			return false
		}
		if f := ir.F32FromBits(bits); math.IsNaN(float64(f)) {
			return false // NaN has no literal form in the textual IR
		}
		replaceWithConst(in, ir.F32, bits)
	case in.Op.IsFloatUnary():
		bits, err := ir.EvalFloatUn(in.Op, arg(0))
		if err != nil {
			return false
		}
		if f := ir.F32FromBits(bits); math.IsNaN(float64(f)) {
			return false
		}
		replaceWithConst(in, ir.F32, bits)
	case in.Op == ir.OpICmp:
		bits, err := ir.EvalICmp(in.Pred, in.Type, arg(0), arg(1))
		if err != nil {
			return false
		}
		replaceWithConst(in, ir.I1, bits)
	case in.Op == ir.OpFCmp:
		bits, err := ir.EvalFCmp(in.Pred, arg(0), arg(1))
		if err != nil {
			return false
		}
		replaceWithConst(in, ir.I1, bits)
	case in.Op == ir.OpSelect:
		if arg(0)&1 == 1 {
			replaceWithConst(in, in.Type, ir.ConstBits(in.Args[1]))
		} else {
			replaceWithConst(in, in.Type, ir.ConstBits(in.Args[2]))
		}
	case in.Op == ir.OpSitofp, in.Op == ir.OpFptosi, in.Op == ir.OpSext,
		in.Op == ir.OpTrunc, in.Op == ir.OpZext:
		bits, err := ir.EvalCvt(in.Op, arg(0))
		if err != nil {
			return false
		}
		t := ir.I32
		switch in.Op {
		case ir.OpSitofp:
			t = ir.F32
		case ir.OpSext:
			t = ir.I64
		}
		replaceWithConst(in, t, bits)
	default:
		return false
	}
	return true
}

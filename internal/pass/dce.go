package pass

import "cudaadvisor/internal/ir"

// DCE removes pure instructions whose result register is never read
// anywhere in the function. Because the IR is not SSA the analysis is
// flow-insensitive: a register counts as live if any instruction in the
// function reads it. Memory operations, calls, barriers and terminators
// are never removed.
func DCE() Pass {
	return ForEachFunc("dce", func(f *ir.Function) (bool, error) {
		changed := false
		for {
			read := make(map[string]bool)
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					for _, a := range in.Args {
						if a.Kind == ir.KReg {
							read[a.Name] = true
						}
					}
				}
			}
			removed := false
			for _, b := range f.Blocks {
				kept := b.Instrs[:0]
				for _, in := range b.Instrs {
					if isPure(in) && in.Dst != "" && !read[in.Dst] {
						removed = true
						continue
					}
					kept = append(kept, in)
				}
				b.Instrs = kept
			}
			if !removed {
				break
			}
			changed = true
		}
		return changed, nil
	})
}

// isPure reports whether removing the instruction cannot change observable
// behaviour (no memory effects, control effects, calls, or possible traps).
func isPure(in *ir.Instr) bool {
	switch {
	case in.Op == ir.OpSDiv || in.Op == ir.OpSRem:
		// May trap on divide-by-zero; only pure when the divisor is a
		// non-zero constant.
		d := in.Args[1]
		return d.Kind == ir.KConstInt && d.Int != 0
	case in.Op.IsIntBinary(), in.Op.IsFloatBinary(), in.Op.IsFloatUnary():
		return true
	case in.Op == ir.OpICmp, in.Op == ir.OpFCmp, in.Op == ir.OpSelect, in.Op == ir.OpMov:
		return true
	case in.Op == ir.OpSitofp, in.Op == ir.OpFptosi, in.Op == ir.OpSext,
		in.Op == ir.OpTrunc, in.Op == ir.OpZext:
		return true
	case in.Op == ir.OpGEP, in.Op == ir.OpSReg, in.Op == ir.OpShPtr:
		return true
	default:
		// Loads are kept: they can fault on out-of-range addresses, and
		// removing them would change the profiles the tool exists to take.
		return false
	}
}

// Package pass provides the transformation-pass framework over the
// miniature IR, the analog of LLVM's pass manager through which the
// paper's instrumentation engine is invoked (it is "implemented as an
// LLVM pass" run by opt).
//
// A Pass transforms or checks a module. The Manager runs passes in
// order, re-finalizing the module after each transforming pass so that
// register/block/callee resolution stays consistent, and verifying the
// result when configured to.
package pass

import (
	"fmt"

	"cudaadvisor/internal/ir"
)

// Pass is a module transformation or analysis.
type Pass interface {
	// Name identifies the pass in diagnostics.
	Name() string
	// Run applies the pass. Transforming passes mutate m in place and
	// report whether they changed anything.
	Run(m *ir.Module) (changed bool, err error)
}

// Manager runs a pipeline of passes.
type Manager struct {
	passes []Pass

	// VerifyEach, when set, runs the IR verifier after every pass that
	// reports a change (and once before the pipeline).
	VerifyEach bool
}

// NewManager returns a Manager that verifies after each changing pass.
func NewManager(passes ...Pass) *Manager {
	return &Manager{passes: passes, VerifyEach: true}
}

// Add appends passes to the pipeline.
func (pm *Manager) Add(passes ...Pass) { pm.passes = append(pm.passes, passes...) }

// Run executes the pipeline on m.
func (pm *Manager) Run(m *ir.Module) error {
	if err := m.Finalize(); err != nil {
		return fmt.Errorf("pass manager: finalize: %w", err)
	}
	if pm.VerifyEach {
		if err := ir.Verify(m); err != nil {
			return fmt.Errorf("pass manager: input module invalid: %w", err)
		}
	}
	for _, p := range pm.passes {
		changed, err := p.Run(m)
		if err != nil {
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		if changed {
			if err := m.Finalize(); err != nil {
				return fmt.Errorf("pass %s left module unfinalizable: %w", p.Name(), err)
			}
			if pm.VerifyEach {
				if err := ir.Verify(m); err != nil {
					return fmt.Errorf("pass %s left module invalid: %w", p.Name(), err)
				}
			}
		}
	}
	return nil
}

// funcPass lifts a per-function transformation into a Pass.
type funcPass struct {
	name string
	run  func(f *ir.Function) (bool, error)
}

func (p *funcPass) Name() string { return p.name }

func (p *funcPass) Run(m *ir.Module) (bool, error) {
	changed := false
	for _, f := range m.Funcs {
		c, err := p.run(f)
		if err != nil {
			return changed, fmt.Errorf("func @%s: %w", f.Name, err)
		}
		changed = changed || c
	}
	return changed, nil
}

// ForEachFunc builds a module pass from a per-function transformation.
func ForEachFunc(name string, run func(f *ir.Function) (bool, error)) Pass {
	return &funcPass{name: name, run: run}
}

// VerifyPass re-checks module validity as an explicit pipeline step.
type VerifyPass struct{}

// Name implements Pass.
func (VerifyPass) Name() string { return "verify" }

// Run implements Pass.
func (VerifyPass) Run(m *ir.Module) (bool, error) { return false, ir.Verify(m) }

// Package cudaadvisor_test holds the top-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its experiment end to end (instrument →
// profile → analyze, or the native bypassing sweeps) and reports the
// headline quantity the paper reports, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation section. Shapes, not absolute numbers,
// are the reproduction target; see EXPERIMENTS.md for the side-by-side.
package cudaadvisor_test

import (
	"io"
	"runtime"
	"testing"
	"time"

	"cudaadvisor/internal/analysis"
	"cudaadvisor/internal/apps"
	"cudaadvisor/internal/bypass"
	"cudaadvisor/internal/experiments"
	"cudaadvisor/internal/gpu"
	"cudaadvisor/internal/instrument"
	"cudaadvisor/internal/ir"
	"cudaadvisor/internal/irtext"
	"cudaadvisor/internal/profcache"
	"cudaadvisor/internal/rt"
	"cudaadvisor/internal/runner"
)

// BenchmarkFigure4ReuseDistance regenerates the reuse-distance histograms
// of Figure 4 (seven applications, element-based model, per CTA).
func BenchmarkFigure4ReuseDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			syrk := res["syrk"]
			b.ReportMetric(100*syrk.Fraction(0), "syrk-dist0-%")
			b.ReportMetric(100*res["hotspot"].InfiniteFraction(), "hotspot-noreuse-%")
		}
	}
}

// BenchmarkFigure5MemoryDivergenceKepler regenerates the Kepler panel of
// Figure 5 (128-byte cache lines, all ten applications).
func BenchmarkFigure5MemoryDivergenceKepler(b *testing.B) {
	benchFigure5(b, gpu.KeplerK40c())
}

// BenchmarkFigure5MemoryDivergencePascal regenerates the Pascal panel of
// Figure 5 (32-byte cache lines).
func BenchmarkFigure5MemoryDivergencePascal(b *testing.B) {
	benchFigure5(b, gpu.PascalP100())
}

func benchFigure5(b *testing.B, cfg gpu.ArchConfig) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(nil, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res["bicg"].Fraction(1), "bicg-1line-%")
			b.ReportMetric(res["syrk"].Degree(), "syrk-degree")
		}
	}
}

// BenchmarkWriteFigure5Serial renders the full Figure 5 (both panels, all
// ten apps) on the serial reference path.
func BenchmarkWriteFigure5Serial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteFigure5(io.Discard, nil, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteFigure5Parallel renders Figure 5 through the parallel
// runner at -j max(4, GOMAXPROCS).
func BenchmarkWriteFigure5Parallel(b *testing.B) {
	pool := runner.New(speedupWorkers())
	b.ReportMetric(float64(pool.Workers()), "workers")
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteFigure5(io.Discard, pool, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerSpeedupFigure5 times the serial and parallel Figure 5
// paths back to back and reports the wall-clock speedup the worker pool
// delivers (the 20 app×arch cells are independent simulator runs, so on
// a machine with >= 4 cores the speedup is expected to exceed 2x; on a
// single core it degrades gracefully to ~1x).
func BenchmarkRunnerSpeedupFigure5(b *testing.B) {
	pool := runner.New(speedupWorkers())
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := experiments.WriteFigure5(io.Discard, nil, 1); err != nil {
			b.Fatal(err)
		}
		serial := time.Since(t0)
		t1 := time.Now()
		if err := experiments.WriteFigure5(io.Discard, pool, 1); err != nil {
			b.Fatal(err)
		}
		parallel := time.Since(t1)
		if i == 0 {
			b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup-x")
			// The pool clamps to GOMAXPROCS, so this reports the worker
			// count actually used.
			b.ReportMetric(float64(pool.Workers()), "workers")
		}
	}
}

// speedupWorkers picks the pool size for the speedup benchmarks: at least
// the 4 workers the evaluation targets, more when the machine has them
// (runner.New clamps to the machine's actual parallelism).
func speedupWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

// BenchmarkAllWarmCache times the full evaluation (`all`) against a warm
// on-disk profile cache: one untimed cold pass fills the store, then
// every timed iteration replays it warm, where all profiling and sweep
// cells are disk hits and only rendering, the debug views, and the
// wall-clock overhead study (which is never cached) run for real. The
// cold-over-warm-x metric is the wall-clock reduction the cache buys a
// CI rerun.
func BenchmarkAllWarmCache(b *testing.B) {
	dir := b.TempDir()
	runAll := func() time.Duration {
		env := experiments.DefaultEnv(nil, 1)
		env.Cache = profcache.New(dir)
		t0 := time.Now()
		if err := experiments.WriteAllEnv(io.Discard, env); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	cold := runAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm := runAll()
		if i == 0 {
			b.ReportMetric(cold.Seconds()/warm.Seconds(), "cold-over-warm-x")
			if warm >= cold {
				b.Errorf("warm all (%v) is not faster than cold (%v)", warm, cold)
			}
		}
	}
}

// BenchmarkTable3BranchDivergence regenerates the branch-divergence table.
func BenchmarkTable3BranchDivergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.App == "nw" {
					b.ReportMetric(r.Result.Percent(), "nw-divergence-%")
				}
			}
		}
	}
}

// BenchmarkFigure6BypassKepler16KB regenerates the 16 KB L1 half of
// Figure 6: baseline / oracle / Eq.(1)-prediction normalized times.
func BenchmarkFigure6BypassKepler16KB(b *testing.B) {
	benchBypass(b, gpu.KeplerK40c().WithL1(16*1024))
}

// BenchmarkFigure6BypassKepler48KB regenerates the 48 KB L1 half of
// Figure 6.
func BenchmarkFigure6BypassKepler48KB(b *testing.B) {
	benchBypass(b, gpu.KeplerK40c().WithL1(48*1024))
}

// BenchmarkFigure7BypassPascal regenerates Figure 7 (24 KB unified cache).
func BenchmarkFigure7BypassPascal(b *testing.B) {
	benchBypass(b, gpu.PascalP100())
}

func benchBypass(b *testing.B, cfg gpu.ArchConfig) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BypassStudy(nil, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			oracleSum, predSum := 0.0, 0.0
			for _, c := range rows {
				oracleSum += c.OracleNorm()
				predSum += c.PredictNorm()
			}
			n := float64(len(rows))
			b.ReportMetric(oracleSum/n, "mean-oracle-norm")
			b.ReportMetric(predSum/n, "mean-predict-norm")
		}
	}
}

// BenchmarkFigure10OverheadKepler measures the tool's wall-clock
// instrumentation overhead on the Kepler configuration (Figure 10).
func BenchmarkFigure10OverheadKepler(b *testing.B) {
	benchOverhead(b, gpu.KeplerK40c())
}

// BenchmarkFigure10OverheadPascal measures the overhead on Pascal.
func BenchmarkFigure10OverheadPascal(b *testing.B) {
	benchOverhead(b, gpu.PascalP100())
}

func benchOverhead(b *testing.B, cfg gpu.ArchConfig) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Overhead(nil, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			sum := 0.0
			for _, r := range rows {
				sum += r.Slowdown()
			}
			b.ReportMetric(sum/float64(len(rows)), "mean-slowdown-x")
		}
	}
}

// BenchmarkFigures8and9DebugViews regenerates the code-/data-centric
// debugging views on bfs.
func BenchmarkFigures8and9DebugViews(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteCodeDataCentric(io.Discard, nil, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzerReuseDistance isolates the analyzer's Fenwick-tree
// reuse-distance engine on a substantial trace (syrk).
func BenchmarkAnalyzerReuseDistance(b *testing.B) {
	p, err := experiments.Profile(mustApp(b, "syrk"), gpu.KeplerK40c(),
		memOnly(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.MergedReuse(p, analysis.DefaultElementReuse())
	}
}

func mustApp(b *testing.B, name string) *apps.App {
	b.Helper()
	a := apps.ByName(name)
	if a == nil {
		b.Fatalf("app %q not registered", name)
	}
	return a
}

func memOnly() instrument.Options { return instrument.Options{Memory: true} }

// BenchmarkAblationVerticalVsHorizontalBicg compares the two software
// bypassing schemes the paper discusses (Section 4.2-D) on bicg: the
// horizontal Eq.(1) configuration against a vertical rewrite driven by
// CUDAAdvisor's per-site reuse profile, both normalized to no bypassing.
func BenchmarkAblationVerticalVsHorizontalBicg(b *testing.B) {
	a := apps.ByName("bicg")
	cfg := gpu.KeplerK40c().WithL1(16 * 1024)
	for i := 0; i < b.N; i++ {
		// Profile once for both plans.
		p, err := experiments.Profile(a, cfg, memOnly(), 1)
		if err != nil {
			b.Fatal(err)
		}
		sites := map[ir.Loc]*analysis.SiteReuse{}
		for _, kp := range p.Kernels {
			analysis.MergeSiteReuse(sites, analysis.ReuseBySite(kp.Trace, analysis.DefaultElementReuse()))
		}
		plan := bypass.VerticalPlan(sites, bypass.DefaultVerticalOptions())

		run := func(l1Warps int, vertical bool) int64 {
			m, err := a.Module()
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Finalize(); err != nil {
				b.Fatal(err)
			}
			if vertical {
				bypass.ApplyVertical(m, plan)
			}
			counter := rt.NewCycleCounter()
			ctx := rt.NewContext(gpu.NewDevice(cfg, experiments.DeviceMemBytes), counter)
			ctx.Options.L1Warps = l1Warps
			if err := a.Run(ctx, instrument.NativeProgram(m), experiments.BypassRunScale); err != nil {
				b.Fatal(err)
			}
			return counter.Cycles
		}
		if i == 0 {
			base := run(0, false)
			horizontal := run(1, false)
			vertical := run(0, true)
			b.ReportMetric(float64(horizontal)/float64(base), "horizontal-norm")
			b.ReportMetric(float64(vertical)/float64(base), "vertical-norm")
		}
	}
}

// perSMKernelSrc is a compute-heavy multi-CTA kernel for the per-SM
// sharding benchmark: each thread runs a long arithmetic loop plus
// strided global traffic, so the per-SM shards carry real simulation work.
const perSMKernelSrc = `
module persm
kernel @spin(%in: ptr, %out: ptr, %iters: i32) {
entry:
  %tx   = sreg tid.x
  %bx   = sreg ctaid.x
  %bd   = sreg ntid.x
  %base = mul i32 %bx, %bd
  %i    = add i32 %base, %tx
  %a    = gep %in, %i, 4
  %v    = ld f32 global [%a]
  %k    = mov i32 0
  br loop
loop:
  %v = fmul f32 %v, 1.0001
  %v = fadd f32 %v, 0.5
  %k = add i32 %k, 1
  %c = icmp lt i32 %k, %iters
  cbr %c, loop, done
done:
  %o = gep %out, %i, 4
  st f32 global [%o], %v
  ret
}
`

// BenchmarkLaunchPerSM measures the intra-launch SM sharding: one large
// multi-CTA launch executed serially and again with the SM shards spread
// over a worker pool, reporting the wall-clock speedup (expected >= 2x on
// a machine with 8 cores; the outputs are byte-identical either way, which
// TestParallelLaunchByteIdentical in internal/gpu asserts).
func BenchmarkLaunchPerSM(b *testing.B) {
	m, err := irtext.Parse("persm.mir", perSMKernelSrc)
	if err != nil {
		b.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		b.Fatal(err)
	}
	cfg := gpu.KeplerK40c() // 15 SMs
	const n = 60 * 256
	launch := func(pool *runner.Pool) time.Duration {
		d := gpu.NewDevice(cfg, 16<<20)
		in, _ := d.Mem.Alloc(4 * n)
		out, _ := d.Mem.Alloc(4 * n)
		t0 := time.Now()
		if _, err := d.Launch(m.Func("spin"), gpu.LaunchParams{
			Grid: [3]int{60, 1, 1}, Block: [3]int{256, 1, 1},
			Args:          []uint64{in, out, ir.I32Bits(2000)},
			Pool:          pool,
			L1WarpsPerCTA: -1,
		}); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	pool := runner.New(speedupWorkers())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial := launch(nil)
		parallel := launch(pool)
		if i == 0 {
			b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup-x")
			b.ReportMetric(float64(pool.Workers()), "workers")
		}
	}
}

// BenchmarkAblationReuseEngines compares the Fenwick-tree reuse-distance
// engine against the naive O(N^2) reference on the same trace (the
// DESIGN.md ablation for the analyzer's data structure choice).
func BenchmarkAblationReuseEngines(b *testing.B) {
	p, err := experiments.Profile(mustApp(b, "bicg"), gpu.KeplerK40c(), memOnly(), 1)
	if err != nil {
		b.Fatal(err)
	}
	tr := p.Kernels[0].Trace
	b.Run("fenwick", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analysis.ReuseDistance(tr, analysis.DefaultElementReuse())
		}
	})
	b.Run("naive", func(b *testing.B) {
		// The naive engine is quadratic; bound the input so one iteration
		// stays tractable.
		small := *tr
		if len(small.Mem) > 400 {
			small.Mem = small.Mem[:400]
		}
		for i := 0; i < b.N; i++ {
			analysis.NaiveReuseDistance(&small, analysis.DefaultElementReuse())
		}
	})
}
